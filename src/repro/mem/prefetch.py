"""L2 hardware prefetchers feeding the DRAM cache.

A prefetcher is a pure candidate generator: the system trains it on every
L2 demand access (:meth:`Prefetcher.on_access`) and on every fill
completion (:meth:`Prefetcher.on_fill`), and it answers with block
addresses worth fetching speculatively.  Issue policy — L2/MSHR
duplicate filtering, the prefetch-partition capacity check, the
low-priority request class — lives in ``System._issue_prefetches``, so
one accounting path serves every prefetcher kind.

Two kinds to start (the Sniper ``DramCache`` exemplar models exactly
this split):

* **next-line** — on a demand miss, fetch the next ``degree`` sequential
  blocks; on any fill, extend the stream by one more line, so a
  sequential miss stream keeps the prefetcher running ahead of it
  (tagged next-line prefetching).
* **stride-per-PC** — a table keyed by load PC tracking (last address,
  stride, confidence); once the same stride repeats ``min_confidence``
  times, fetch ``degree`` strides ahead.  The table is
  direct-mapped by PC hash with ``table_entries`` slots.

Usefulness accounting (in :class:`PrefetchStats`, mounted as
``metrics["prefetch"]``): ``useful`` counts prefetched blocks a demand
access later found (in the L2, or still in flight), ``late`` the subset
that was still in flight when the demand arrived — issued in time to
help, too late to hide the full latency.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.config import PrefetchConfig
from repro.metrics.registry import MetricGroup, derived


class PrefetchStats(MetricGroup):
    COUNTERS = ("issued", "useful", "late", "drops_mshr", "drops_present")

    @derived
    def accuracy(self) -> float:
        """Fraction of issued prefetches a demand access ever wanted."""
        return self.useful / self.issued if self.issued else 0.0


class Prefetcher(Protocol):
    """Candidate generator contract both prefetcher kinds implement."""

    def on_access(self, addr: int, pc: int, hit: bool) -> Sequence[int]:
        """Train on a demand access; return candidate block addresses."""

    def on_fill(self, addr: int) -> Sequence[int]:
        """React to a completed L2 fill; return candidate addresses."""

    def capture_state(self) -> dict[int, list[int]]:
        """Value-copy of mutable predictor state (snapshot diffing)."""

    def restore_state(self, state: dict[int, list[int]]) -> None:
        """Adopt state captured by :meth:`capture_state`."""


class NextLinePrefetcher:
    """Sequential next-``degree``-blocks prefetcher (miss- and fill-tagged)."""

    def __init__(self, block_bytes: int, degree: int = 1):
        self._block = block_bytes
        self._degree = degree

    def on_access(self, addr: int, pc: int, hit: bool) -> Sequence[int]:
        if hit:
            return ()
        b = self._block
        return [addr + b * k for k in range(1, self._degree + 1)]

    def on_fill(self, addr: int) -> Sequence[int]:
        # Extending on fills keeps a sequential stream ahead of the
        # demand misses instead of re-triggering off each one.
        return [addr + self._block * self._degree]

    def capture_state(self) -> dict[int, list[int]]:
        return {}   # stateless: nothing to diff or restore

    def restore_state(self, state: dict[int, list[int]]) -> None:
        pass


class StridePrefetcher:
    """Per-PC stride table with a confidence threshold."""

    def __init__(self, block_bytes: int, degree: int = 1,
                 table_entries: int = 64, min_confidence: int = 2):
        self._block = block_bytes
        self._degree = degree
        self._entries = table_entries
        self._min_conf = min_confidence
        #: pc-hash slot -> [pc, last_addr, stride, confidence]
        self._table: dict[int, list[int]] = {}

    def on_access(self, addr: int, pc: int, hit: bool) -> Sequence[int]:
        slot = pc % self._entries
        row = self._table.get(slot)
        if row is None or row[0] != pc:
            self._table[slot] = [pc, addr, 0, 0]
            return ()
        stride = addr - row[1]
        row[1] = addr
        if stride == 0:
            return ()
        if stride == row[2]:
            row[3] += 1
        else:
            row[2] = stride
            row[3] = 1
        if row[3] < self._min_conf:
            return ()
        return [addr + stride * k for k in range(1, self._degree + 1)]

    def on_fill(self, addr: int) -> Sequence[int]:
        return ()   # stride streams are driven by the access pattern alone

    def capture_state(self) -> dict[int, list[int]]:
        return {slot: row[:] for slot, row in self._table.items()}

    def restore_state(self, state: dict[int, list[int]]) -> None:
        self._table = {slot: row[:] for slot, row in state.items()}


def make_prefetcher(cfg: PrefetchConfig, block_bytes: int) -> Prefetcher:
    """Build the configured prefetcher (``cfg.kind`` must not be "none")."""
    if cfg.kind == "nextline":
        return NextLinePrefetcher(block_bytes, degree=cfg.degree)
    if cfg.kind == "stride":
        return StridePrefetcher(block_bytes, degree=cfg.degree,
                                table_entries=cfg.table_entries,
                                min_confidence=cfg.min_confidence)
    raise ValueError(f"no prefetcher for kind {cfg.kind!r}")
