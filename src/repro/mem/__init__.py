"""Memory hierarchy around the DRAM cache.

* :mod:`repro.mem.sram` — private L1 / shared L2 SRAM caches (write-back,
  write-allocate, pluggable replacement);
* :mod:`repro.mem.mshr` — miss-status holding registers with same-block
  coalescing and a demand/prefetch capacity partition;
* :mod:`repro.mem.prefetch` — L2 hardware prefetchers (next-line,
  stride-per-PC) issuing low-priority DRAM-cache reads;
* :mod:`repro.mem.writebuffer` — bounded L2 write buffer with drain
  policies between dirty evictions and the controller;
* :mod:`repro.mem.mainmem` — the off-chip memory (flat 50 ns + a
  2 GHz/64-bit bus per Table II, or a banked DDR3-style organisation
  behind the Substrate);
* :mod:`repro.mem.llc_writeback` — Lee et al.'s DRAM-aware LLC writeback
  policy used in the paper's Fig. 19 study.
"""

from repro.mem.mainmem import (AnyMainMemory, BankedMainMemory, MainMemory,
                               MainMemoryStats, make_mainmem)
from repro.mem.sram import SRAMCache
from repro.mem.mshr import LoadWaiter, MSHREntry, MSHRFile, MSHRStats
from repro.mem.prefetch import (NextLinePrefetcher, PrefetchStats, Prefetcher,
                                StridePrefetcher, make_prefetcher)
from repro.mem.writebuffer import L2WriteBuffer, WriteBufferStats
from repro.mem.llc_writeback import DRAMAwareWritebackIndex

__all__ = [
    "AnyMainMemory",
    "BankedMainMemory",
    "MainMemory",
    "MainMemoryStats",
    "make_mainmem",
    "SRAMCache",
    "LoadWaiter",
    "MSHREntry",
    "MSHRFile",
    "MSHRStats",
    "NextLinePrefetcher",
    "PrefetchStats",
    "Prefetcher",
    "StridePrefetcher",
    "make_prefetcher",
    "L2WriteBuffer",
    "WriteBufferStats",
    "DRAMAwareWritebackIndex",
]
