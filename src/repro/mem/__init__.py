"""Memory hierarchy around the DRAM cache.

* :mod:`repro.mem.sram` — private L1 / shared L2 SRAM caches (write-back,
  write-allocate, LRU);
* :mod:`repro.mem.mshr` — miss-status holding registers with same-block
  coalescing;
* :mod:`repro.mem.mainmem` — the off-chip memory (flat 50 ns + a
  2 GHz/64-bit bus per Table II, or a banked DDR3-style organisation
  behind the Substrate);
* :mod:`repro.mem.llc_writeback` — Lee et al.'s DRAM-aware LLC writeback
  policy used in the paper's Fig. 19 study.
"""

from repro.mem.mainmem import (AnyMainMemory, BankedMainMemory, MainMemory,
                               MainMemoryStats, make_mainmem)
from repro.mem.sram import SRAMCache
from repro.mem.mshr import MSHRFile
from repro.mem.llc_writeback import DRAMAwareWritebackIndex

__all__ = [
    "AnyMainMemory",
    "BankedMainMemory",
    "MainMemory",
    "MainMemoryStats",
    "make_mainmem",
    "SRAMCache",
    "MSHRFile",
    "DRAMAwareWritebackIndex",
]
