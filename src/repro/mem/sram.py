"""On-chip SRAM caches (private L1s, shared L2).

A functional set-associative, write-back, write-allocate cache with true
LRU.  Sets are materialised lazily (simulated footprints touch a sparse
subset) and stored as ``tag -> [tag, dirty, stamp]`` dicts, so the hit
path (the L1/L2 front of every simulated memory operation) is one hash
probe instead of a way scan; victim selection still sees the entry list
(insertion-ordered ``values()``), and stamps are globally unique, so the
pluggable policies pick the identical victim the list layout produced.
The cache is purely functional — latency is charged by the caller (core
model / system wiring) so that the same class serves both levels.

An optional *dirty-row index* supports Lee et al.'s DRAM-aware writeback
policy (Fig. 19): it tracks, per DRAM-cache row, which dirty blocks the
cache currently holds, so an eviction can be batched with other dirty
blocks bound for the same row (see :mod:`repro.mem.llc_writeback`).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.cache.replacement import SRAM_POLICIES
from repro.config import CacheGeometry
from repro.metrics.registry import MetricGroup, derived


class SRAMCacheStats(MetricGroup):
    COUNTERS = ("accesses", "hits", "evictions", "dirty_evictions",
                "clean_evictions")

    @derived
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SRAMCache:
    """Set-associative cache; returns the victim on allocating misses.

    Victim selection is pluggable via ``geom.replacement`` (see
    :mod:`repro.cache.replacement`); the default "lru" reproduces the
    historical true-LRU behaviour exactly.
    """

    def __init__(self, geom: CacheGeometry,
                 row_of: Optional[Callable[[int], int]] = None):
        self.geom = geom
        self.num_sets = geom.num_sets
        self.block = geom.block_bytes
        self._assoc = geom.assoc
        # Module-level function, never a closure (snapshot-safe).
        self._pick_victim = SRAM_POLICIES[geom.replacement]
        # set idx -> {tag -> [tag, dirty, stamp]} (insertion-ordered)
        self._sets: dict[int, dict[int, list[Any]]] = {}
        self._clock = 0
        self.stats = SRAMCacheStats()
        # Optional Lee-writeback support: addr -> DRAM row, and the index.
        self._row_of = row_of
        self._dirty_rows: dict[int, set[int]] = {}

    # -- address helpers ----------------------------------------------------------

    def _set_of(self, addr: int) -> int:
        return (addr // self.block) % self.num_sets

    def _tag_of(self, addr: int) -> int:
        return (addr // self.block) // self.num_sets

    def _addr_of(self, set_idx: int, tag: int) -> int:
        return (tag * self.num_sets + set_idx) * self.block

    # -- dirty-row index ------------------------------------------------------------

    def _track_dirty(self, addr: int) -> None:
        if self._row_of is not None:
            self._dirty_rows.setdefault(self._row_of(addr), set()).add(addr)

    def _untrack_dirty(self, addr: int) -> None:
        if self._row_of is not None:
            row = self._row_of(addr)
            blocks = self._dirty_rows.get(row)
            if blocks is not None:
                blocks.discard(addr)
                if not blocks:
                    del self._dirty_rows[row]

    def dirty_in_row(self, row: int) -> list[int]:
        """Dirty block addresses currently mapping to DRAM row ``row``."""
        return sorted(self._dirty_rows.get(row, ()))

    # -- operations -----------------------------------------------------------------

    def probe(self, addr: int) -> bool:
        """Hit check without state change."""
        s = self._sets.get(self._set_of(addr))
        return s is not None and self._tag_of(addr) in s

    def touch(self, addr: int, is_write: bool) -> bool:
        """Reference without allocating on a miss (allocate-on-fill mode).

        On a hit, LRU and dirty state update as usual; on a miss the cache
        is unchanged — the caller tracks the miss in an MSHR and calls
        :meth:`fill` when the data arrives.
        """
        self.stats.accesses += 1
        blk = addr // self.block
        s = self._sets.get(blk % self.num_sets)
        if s is not None:
            e = s.get(blk // self.num_sets)
            if e is not None:
                self.stats.hits += 1
                self._clock += 1
                e[2] = self._clock
                if is_write and not e[1]:
                    e[1] = True
                    self._track_dirty(addr)
                return True
        return False

    def access(self, addr: int, is_write: bool) -> tuple[bool, Optional[int]]:
        """Reference ``addr``; allocate on miss.

        Returns ``(hit, dirty_victim_addr)``.  ``dirty_victim_addr`` is the
        block address of a dirty line displaced by this access (the caller
        turns it into a writeback request), or None.
        """
        self.stats.accesses += 1
        blk = addr // self.block
        set_idx = blk % self.num_sets
        tag = blk // self.num_sets
        s = self._sets.get(set_idx)
        if s is None:
            s = self._sets[set_idx] = {}
        self._clock += 1
        e = s.get(tag)
        if e is not None:
            self.stats.hits += 1
            e[2] = self._clock
            if is_write and not e[1]:
                e[1] = True
                self._track_dirty(addr)
            return True, None
        # Miss: allocate (write-allocate for stores too).
        victim_addr = None
        if len(s) >= self._assoc:
            victim = self._pick_victim(s.values())
            del s[victim[0]]
            self.stats.evictions += 1
            vaddr = self._addr_of(set_idx, victim[0])
            if victim[1]:
                self.stats.dirty_evictions += 1
                self._untrack_dirty(vaddr)
                victim_addr = vaddr
            else:
                self.stats.clean_evictions += 1
        s[tag] = [tag, is_write, self._clock]
        if is_write:
            self._track_dirty(addr)
        return False, victim_addr

    def fill(self, addr: int, dirty: bool = False) -> Optional[int]:
        """Insert a block (refill path); returns a dirty victim address."""
        hit, victim = self.access(addr, dirty)
        return victim

    def clean(self, addr: int) -> bool:
        """Clear the dirty bit (Lee's eager writeback cleans lines in place).

        Returns True if the line was present and dirty.
        """
        s = self._sets.get(self._set_of(addr))
        if s is None:
            return False
        e = s.get(self._tag_of(addr))
        if e is not None and e[1]:
            e[1] = False
            self._untrack_dirty(addr)
            return True
        return False

    def invalidate(self, addr: int) -> bool:
        s = self._sets.get(self._set_of(addr))
        if s is None:
            return False
        tag = self._tag_of(addr)
        e = s.get(tag)
        if e is not None:
            if e[1]:
                self._untrack_dirty(addr)
            del s[tag]
            return True
        return False

    def dirty_count(self) -> int:
        """Number of dirty lines (O(cache); tests only)."""
        return sum(1 for s in self._sets.values() for e in s.values() if e[1])

    # -- snapshot hooks (see repro/snapshot.py and DESIGN.md) -------------------

    def capture_state(self) -> dict[str, Any]:
        """Independent copy of contents + LRU clock + dirty-row index.

        SRAM caches are small (thousands of lines), so an eager copy is
        cheap; the copy is fully detached — donor and restored caches
        never share mutable structure.  Stats are *not* captured: every
        warm-capture point in the system resets them anyway, and the
        full-snapshot path copies the live object graph wholesale.
        """
        return {
            "sets": {k: [e[:] for e in v.values()]
                     for k, v in self._sets.items()},
            "clock": self._clock,
            "dirty_rows": {row: set(blocks)
                           for row, blocks in self._dirty_rows.items()},
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Adopt contents captured by :meth:`capture_state` (re-copied, so
        one captured state serves any number of restores)."""
        # Captures keep the historical list-of-entries layout; rebuild the
        # per-set dicts in list order, which is exactly insertion order.
        self._sets = {k: {e[0]: e[:] for e in v}
                      for k, v in state["sets"].items()}
        self._clock = state["clock"]
        self._dirty_rows = {row: set(blocks)
                            for row, blocks in state["dirty_rows"].items()}
