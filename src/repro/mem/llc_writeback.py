"""Lee et al.'s DRAM-aware last-level-cache writeback (Fig. 19 study).

Lee, Narasiman, Ebrahimi, Mutlu & Patt (UT-Austin TR-HPS-2010-002) propose
that when the LLC evicts a dirty line, it should *eagerly* also write back
other dirty lines headed to the **same DRAM row**: the writes then drain
as row-buffer hits in one bus direction, instead of trickling out later as
scattered row conflicts mixed with reads.

The mechanism here piggybacks on :class:`repro.mem.sram.SRAMCache`'s
dirty-row index: on a demand eviction of a dirty block, up to
``batch_limit`` other dirty blocks of the same DRAM-cache row are cleaned
in place and emitted as additional writeback requests.

The paper's Fig. 19 point is that this scheme, designed for conventional
DRAM, does not resolve the *tag-access* problems unique to DRAM caches —
a DCA controller still improves on it by ~7 % (direct-mapped).
"""

from __future__ import annotations

from typing import Callable

from repro.mem.sram import SRAMCache
from repro.metrics.registry import MetricGroup, derived


class LeeWritebackStats(MetricGroup):
    COUNTERS = (
        "triggers",           # demand dirty evictions examined
        "eager_writebacks",   # extra same-row writebacks emitted
    )

    @derived
    def batch_factor(self) -> float:
        """Mean extra writebacks emitted per trigger."""
        return self.eager_writebacks / self.triggers if self.triggers else 0.0


class DRAMAwareWritebackIndex:
    """Drives eager same-row writebacks out of an SRAMCache.

    Parameters
    ----------
    cache:
        The LLC (must have been built with a ``row_of`` mapping so its
        dirty-row index is live).
    row_of:
        Maps a block address to its DRAM-cache row id (the same function
        given to the cache).
    batch_limit:
        Maximum eager writebacks per trigger (Lee's scheme bounds the burst
        so it cannot starve demand traffic).
    """

    def __init__(self, cache: SRAMCache, row_of: Callable[[int], int],
                 batch_limit: int = 4):
        if cache._row_of is None:
            raise ValueError("cache must be constructed with row_of tracking")
        self.cache = cache
        self.row_of = row_of
        self.batch_limit = batch_limit
        self.stats = LeeWritebackStats()

    def on_dirty_eviction(self, victim_addr: int) -> list[int]:
        """A dirty line leaves the LLC: pick same-row dirty lines to clean.

        Returns the block addresses to emit as *additional* writeback
        requests; each has already been cleaned in the LLC (it stays
        resident but is no longer dirty, exactly as in Lee's scheme).
        """
        self.stats.triggers += 1
        row = self.row_of(victim_addr)
        batch: list[int] = []
        for addr in self.cache.dirty_in_row(row):
            if addr == victim_addr:
                continue
            if len(batch) >= self.batch_limit:
                break
            if self.cache.clean(addr):
                batch.append(addr)
        self.stats.eager_writebacks += len(batch)
        return batch
