"""Experiment harness: one module per paper table/figure.

Every artefact in the paper's evaluation section has an experiment ID:

====== ==========================================================
ID     paper artefact
====== ==========================================================
table1 Table I   workload mixes
table2 Table II  system parameters
fig08  Fig. 8    average speedup (CD/ROD/DCA x SA/DM)
fig09  Fig. 9    average speedup with XOR remapping
fig10  Fig. 10   per-workload speedups, set-associative
fig11  Fig. 11   per-workload speedups, direct-mapped
fig12  Fig. 12   L2 miss-latency improvement, set-associative
fig13  Fig. 13   L2 miss-latency improvement, direct-mapped
fig14  Fig. 14   accesses per turnaround, set-associative
fig15  Fig. 15   accesses per turnaround, direct-mapped
fig16  Fig. 16   row-buffer hit rate, set-associative
fig17  Fig. 17   row-buffer hit rate, direct-mapped
fig18  Fig. 18   DRAM tag accesses vs tag-cache size
fig19  Fig. 19   speedup under Lee's DRAM-aware writeback
====== ==========================================================

Run from the command line::

    python -m repro.experiments fig08 [--mixes 30] [--jobs 8] [--quick]

Figures 8-17 share one simulation grid; results are cached on disk under
``results/cache`` so subsequent figures reuse completed runs.
"""

from repro.experiments.common import SimParams, RunSpec, run_grid, run_one

__all__ = ["SimParams", "RunSpec", "run_grid", "run_one"]
