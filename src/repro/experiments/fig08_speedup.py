"""Fig. 8 — average normalized weighted speedup of CD / ROD / DCA.

Paper result: normalized to CD, ROD achieves +9.2 % (set-associative) and
+8.6 % (direct-mapped); DCA achieves +16.4 % and +20.8 %.  Expected shape:
DCA > ROD > CD in both organizations, with DCA's margin larger for the
direct-mapped cache.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    DESIGNS,
    SimParams,
    alone_ipc_table,
    alone_specs,
    format_table,
    grid_specs,
    normalized_speedup_table,
    run_grid,
)

ID = "fig08"
TITLE = "Fig. 8: average performance speedup (normalized to CD)"

#: the paper's bar heights, for side-by-side reporting
PAPER = {("sa", "CD"): 1.0, ("sa", "ROD"): 1.092, ("sa", "DCA"): 1.164,
         ("dm", "CD"): 1.0, ("dm", "ROD"): 1.086, ("dm", "DCA"): 1.208}


def run(params: SimParams, mixes: Sequence[int], jobs: int = 0,
        progress: bool = False, use_cache: bool = True):
    specs = grid_specs(mixes, ("sa", "dm"))
    specs += alone_specs("sa") + alone_specs("dm")
    results = run_grid(specs, params, jobs=jobs, progress=progress,
                       use_cache=use_cache)

    data: dict = {"mixes": list(mixes), "speedups": {}}
    rows = []
    for org in ("sa", "dm"):
        alone = alone_ipc_table(
            {s: r for s, r in results.items()
             if s.alone_benchmark and s.organization == org})
        table = normalized_speedup_table(
            results, alone, mixes, org,
            variants=[(d, False) for d in DESIGNS])
        for design in DESIGNS:
            val = table[(design, False)]
            data["speedups"][f"{org}:{design}"] = val
            rows.append([org, design, f"{val:.3f}",
                         f"{PAPER[(org, design)]:.3f}"])

    report = format_table(
        ["org", "design", "speedup (this repro)", "speedup (paper)"],
        rows, title=TITLE)

    s = data["speedups"]
    checks = [
        ("SA: DCA > CD", s["sa:DCA"] > s["sa:CD"]),
        ("SA: DCA > ROD", s["sa:DCA"] > s["sa:ROD"]),
        ("SA: ROD >= CD (within 2%)", s["sa:ROD"] >= s["sa:CD"] * 0.98),
        ("DM: DCA > CD", s["dm:DCA"] > s["dm:CD"]),
        ("DM: DCA > ROD", s["dm:DCA"] > s["dm:ROD"]),
        ("DM: ROD >= CD (within 2%)", s["dm:ROD"] >= s["dm:CD"] * 0.98),
        ("DCA margin larger in DM than SA",
         s["dm:DCA"] / s["dm:CD"] > s["sa:DCA"] / s["sa:CD"]),
    ]
    return report, data, checks
