"""Fig. 19 — speedups with Lee et al.'s DRAM-aware LLC writeback installed.

Lee's policy (see :mod:`repro.mem.llc_writeback`) batches same-DRAM-row
dirty lines out of the L2 whenever a dirty eviction occurs.  The paper's
point: the scheme targets conventional-DRAM write interference and cannot
see the tag-access problems unique to DRAM caches, so a DCA controller
still improves on a Lee-equipped baseline — by ~7 % in the direct-mapped
organization ("LEE+RWC can continue to outperform LEE by 7%").

Interpretation used here (documented in DESIGN.md §5): all designs run
with Lee's writeback in the L2; speedups are normalized to LEE+CD.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    DESIGNS,
    SimParams,
    alone_ipc_table,
    alone_specs,
    format_table,
    grid_specs,
    normalized_speedup_table,
    run_grid,
)

ID = "fig19"
TITLE = "Fig. 19: speedup under DRAM-aware writeback (normalized to LEE+CD)"


def run(params: SimParams, mixes: Sequence[int], jobs: int = 0,
        progress: bool = False, use_cache: bool = True):
    specs = grid_specs(mixes, ("sa", "dm"), lee_writeback=True)
    specs += alone_specs("sa", lee_writeback=True)
    specs += alone_specs("dm", lee_writeback=True)
    results = run_grid(specs, params, jobs=jobs, progress=progress,
                       use_cache=use_cache)

    data: dict = {"mixes": list(mixes), "speedups": {}}
    rows = []
    for org in ("sa", "dm"):
        alone = alone_ipc_table(
            {s: r for s, r in results.items()
             if s.alone_benchmark and s.organization == org})
        table = normalized_speedup_table(
            results, alone, mixes, org,
            variants=[(d, False) for d in DESIGNS],
            lee_writeback=True)
        for design in DESIGNS:
            val = table[(design, False)]
            data["speedups"][f"{org}:LEE+{design}"] = val
            rows.append([org, f"LEE+{design}", f"{val:.3f}"])

    report = format_table(["org", "variant", "speedup vs LEE+CD"],
                          rows, title=TITLE)
    s = data["speedups"]
    checks = [
        ("DM: LEE+DCA beats LEE+CD (paper: ~+7%)",
         s["dm:LEE+DCA"] > 1.0),
        ("SA: LEE+DCA beats LEE+CD", s["sa:LEE+DCA"] > 1.0),
        ("DM: LEE+DCA best variant",
         s["dm:LEE+DCA"] >= max(s["dm:LEE+CD"], s["dm:LEE+ROD"])),
    ]
    return report, data, checks
