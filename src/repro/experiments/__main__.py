"""``python -m repro.experiments`` entry point."""

from repro.experiments.runner import main

raise SystemExit(main())
