"""Fig. 14 — accesses per turnaround, set-associative."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import SimParams
from repro.experiments.turnaround import run_org

ID = "fig14"
TITLE = "Fig. 14: accesses per turnaround, set-associative"


def run(params: SimParams, mixes: Sequence[int], jobs: int = 0,
        progress: bool = False, use_cache: bool = True):
    return run_org("sa", params, mixes, jobs=jobs, progress=progress,
                   use_cache=use_cache, title=TITLE)
