"""Command-line entry point: regenerate any paper table/figure, or sweep.

Usage::

    python -m repro.experiments <id> [...ids|all] [options]
    dca-repro fig08 --mixes 30 --jobs 8
    dca-repro sweep --axis scheduler=bliss,frfcfs --axis queues.read_entries=16,64

Reports are printed and written to ``results/<id>.txt`` (+ ``.json``).
Each experiment also evaluates its shape checks (the qualitative claims
the paper makes about that figure) and reports PASS/FAIL per claim.

The ``sweep`` subcommand (``dca-repro sweep --help``) executes arbitrary
scenario grids with sharding and resumable checkpoints; it is implemented
in :mod:`repro.scenarios.cli`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments import common
from repro.experiments import (
    fig08_speedup, fig09_remap, fig10_sa_workloads, fig11_dm_workloads,
    fig12_misslat_sa, fig13_misslat_dm, fig14_turnaround_sa,
    fig15_turnaround_dm, fig16_rowhit_sa, fig17_rowhit_dm,
    fig18_tagcache, fig19_lee, table1_workloads, table2_params,
)

MODULES = {m.ID: m for m in (
    table1_workloads, table2_params,
    fig08_speedup, fig09_remap, fig10_sa_workloads, fig11_dm_workloads,
    fig12_misslat_sa, fig13_misslat_dm, fig14_turnaround_sa,
    fig15_turnaround_dm, fig16_rowhit_sa, fig17_rowhit_dm,
    fig18_tagcache, fig19_lee,
)}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="dca-repro",
        description="Regenerate tables/figures of the DCA paper (SC'16).",
        epilog="For arbitrary scenario grids (sharded, resumable), see the "
               "'sweep' subcommand: dca-repro sweep --help")
    p.add_argument("ids", nargs="+",
                   help=f"experiment ids ({', '.join(MODULES)}) or 'all'")
    p.add_argument("--mixes", type=int, default=30,
                   help="number of Table I mixes to simulate (default 30)")
    p.add_argument("--jobs", type=int, default=0,
                   help="worker processes (0 = auto)")
    p.add_argument("--quick", action="store_true",
                   help="reduced instruction budgets (smoke-test scale)")
    p.add_argument("--measure", type=int, default=None,
                   help="measured instructions per core")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not write the results cache")
    p.add_argument("--warm-cache", action="store_true",
                   help="share functional warm-up state across controller "
                        "designs of the same (mix, substrate) group "
                        "(bit-identical results; parallelism then spans "
                        "groups, not points)")
    p.add_argument("--out", default="results",
                   help="output directory (default ./results)")
    p.add_argument("--profile", metavar="OUT.prof", default=None,
                   help="run the experiments under cProfile and write "
                        "pstats data to OUT.prof (forces --jobs 1 so the "
                        "simulation work is traced in-process; walls "
                        "inflate under tracing)")
    return p


def run_experiment(exp_id: str, params: common.SimParams, mixes: list[int],
                   jobs: int, out_dir: Path, use_cache: bool = True) -> bool:
    mod = MODULES[exp_id]
    print(f"=== {exp_id}: {mod.TITLE}")
    t0 = time.time()
    try:
        report, data, checks = mod.run(params, mixes, jobs=jobs,
                                       progress=True, use_cache=use_cache)
    except common.GridExecutionError as exc:
        # Completed points were still stored; report the casualties and
        # fail this experiment without killing the remaining ids.
        print(f"  ERROR: {exc}", file=sys.stderr)
        return False
    elapsed = time.time() - t0
    print(report)
    ok = True
    for desc, passed in checks:
        print(f"  [{'PASS' if passed else 'FAIL'}] {desc}")
        ok = ok and passed
    print(f"  ({elapsed:.1f}s)\n")

    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / f"{exp_id}.txt").write_text(
        report + "\n" + "\n".join(
            f"[{'PASS' if p else 'FAIL'}] {d}" for d, p in checks) + "\n")
    (out_dir / f"{exp_id}.json").write_text(json.dumps(
        {"id": exp_id, "title": mod.TITLE, "data": data,
         "checks": {d: p for d, p in checks}, "elapsed_s": elapsed},
        indent=2, default=str))
    return ok


def main(argv: list[str] | None = None) -> int:
    from repro.build_info import check_required
    check_required()    # REPRO_REQUIRE_COMPILED=1: no silent fallback
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        from repro.scenarios.cli import main as sweep_main
        return sweep_main(argv[1:])

    parser = build_parser()
    args = parser.parse_args(argv)
    ids = list(MODULES) if "all" in args.ids else args.ids
    unknown = [i for i in ids if i not in MODULES]
    if unknown:
        if "sweep" in unknown:
            print("'sweep' is a subcommand and must come first: "
                  "dca-repro sweep [options]", file=sys.stderr)
        print(f"unknown experiment ids: {unknown}; known: {list(MODULES)}",
              file=sys.stderr)
        return 2

    params = common.SimParams.from_cli(quick=args.quick, measure=args.measure,
                                       error=parser.error)
    mixes = common.validated_mix_ids(args.mixes, error=parser.error)
    out_dir = Path(args.out)

    jobs = args.jobs
    if args.profile:
        # Worker processes would escape the profiler; trace in-process.
        jobs = 1

    def run_all() -> bool:
        ok_all = True
        for exp_id in ids:
            ok = run_experiment(exp_id, params, mixes, jobs, out_dir,
                                use_cache=not args.no_cache)
            ok_all = ok_all and ok
        return ok_all

    # The figure modules call run_grid themselves; the process-wide
    # default is how the flag reaches them (see common.run_grid).  It is
    # restored afterwards so a programmatic caller invoking main() does
    # not silently change later run_grid calls in the same process.
    common.set_default_warm_cache(args.warm_cache)
    try:
        if args.profile:
            all_ok = common.write_profiled(run_all, Path(args.profile))
            print(f"profile written to {args.profile}")
        else:
            all_ok = run_all()
    finally:
        common.set_default_warm_cache(False)
    return 0 if all_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
