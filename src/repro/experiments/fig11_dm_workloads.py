"""Fig. 11 — per-workload speedups, direct-mapped organization."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import SimParams
from repro.experiments.perworkload import run_org

ID = "fig11"
TITLE = "Fig. 11: per-workload speedup, direct-mapped (normalized to CD)"


def run(params: SimParams, mixes: Sequence[int], jobs: int = 0,
        progress: bool = False, use_cache: bool = True):
    return run_org("dm", params, mixes, jobs=jobs, progress=progress,
                   use_cache=use_cache, title=TITLE)
