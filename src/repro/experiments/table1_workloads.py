"""Table I — the 30 four-core workload mixes (transcription check + stats)."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import SimParams, format_table
from repro.workloads.profiles import PROFILES
from repro.workloads.table1 import TABLE1_MIXES, mix_name

ID = "table1"
TITLE = "Table I: workload groupings"


def run(params: SimParams, mixes: Sequence[int], jobs: int = 0,
        progress: bool = False, use_cache: bool = True):
    rows = []
    for m in sorted(TABLE1_MIXES):
        names = TABLE1_MIXES[m]
        apki = sum(PROFILES[n].l2_apki for n in names)
        wr = sum(PROFILES[n].l2_apki * PROFILES[n].store_fraction
                 for n in names) / apki
        rows.append([m, mix_name(m), f"{apki:.0f}", f"{wr * 100:.0f}%"])
    report = format_table(
        ["mix", "benchmarks", "sum L2 APKI", "store share"],
        rows, title=TITLE)
    data = {"mixes": {str(m): list(TABLE1_MIXES[m]) for m in TABLE1_MIXES}}

    used = {n for names in TABLE1_MIXES.values() for n in names}
    checks = [
        ("30 mixes", len(TABLE1_MIXES) == 30),
        ("every mix has 4 benchmarks",
         all(len(v) == 4 for v in TABLE1_MIXES.values())),
        ("all 11 paper benchmarks appear", used == set(PROFILES)),
    ]
    return report, data, checks
