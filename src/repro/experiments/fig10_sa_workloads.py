"""Fig. 10 — per-workload speedups, set-associative organization."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import SimParams
from repro.experiments.perworkload import run_org

ID = "fig10"
TITLE = "Fig. 10: per-workload speedup, set-associative (normalized to CD)"


def run(params: SimParams, mixes: Sequence[int], jobs: int = 0,
        progress: bool = False, use_cache: bool = True):
    return run_org("sa", params, mixes, jobs=jobs, progress=progress,
                   use_cache=use_cache, title=TITLE)
