"""Shared implementation of Figs. 16 and 17 — read row-buffer hit rate.

The paper reports the row-buffer hit rate of *read accesses* for all six
variants.  Expected shape: DCA >= CD (DCA avoids read-read conflicts and
batches its held LRs); ROD with remapping may slightly exceed DCA (but
loses overall to turnarounds, Figs. 14/15); paper levels are ~60 % for the
set-associative and ~70 % for the direct-mapped organization under DCA.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    RunSpec,
    SimParams,
    format_table,
    grid_specs,
    run_grid,
)
from repro.experiments.perworkload import VARIANTS, _label


def run_org(organization: str, params: SimParams, mixes: Sequence[int],
            jobs: int = 0, progress: bool = False, use_cache: bool = True,
            title: str = ""):
    specs = grid_specs(mixes, (organization,), remaps=(False, True))
    results = run_grid(specs, params, jobs=jobs, progress=progress,
                       use_cache=use_cache)

    rates: dict[str, float] = {}
    for design, remap in VARIANTS:
        vals = [results[RunSpec(design, organization, remap, mix_id=m)]
                .read_row_hit_rate for m in mixes]
        rates[_label(design, remap)] = sum(vals) / len(vals)

    rows = [[lab, f"{rates[lab] * 100:.1f}%"]
            for lab in [_label(d, r) for d, r in VARIANTS]]
    report = format_table(["variant", "read row-buffer hit rate"],
                          rows, title=title)
    data = {"mixes": list(mixes), "row_hit_rate": rates}

    checks = [
        ("all variants within a plausible band (20%..95%)",
         all(0.20 < v < 0.95 for v in rates.values())),
        ("DCA row-hit rate within 10% of CD or better",
         rates["DCA"] >= rates["CD"] - 0.10),
    ]
    return report, data, checks
