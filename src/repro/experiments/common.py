"""Shared experiment machinery: run specs, caching, parallel execution.

The evaluation figures 8-17 all read off the same **grid** of simulations
(design x organization x remapping x mix), plus single-core *alone* runs
for weighted-speedup denominators.  ``run_grid`` executes a list of
:class:`RunSpec` with a process pool and a JSON disk cache keyed by the
spec+parameter hash, so regenerating a second figure reuses the first's
simulations.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.config import scaled_config
from repro.metrics.speedup import geomean, weighted_speedup
from repro.sim.system import System, SystemResult
from repro.workloads.profiles import PROFILES, profile
from repro.workloads.table1 import TABLE1_MIXES, mix_profiles

#: designs in the paper's presentation order
DESIGNS = ("CD", "ROD", "DCA")


@dataclass(frozen=True)
class SimParams:
    """Knobs shared by every run of one experiment invocation."""

    capacity_scale: int = 8          # divide L2 + DRAM-cache capacity by this
    footprint_scale: float = 1 / 20  # multiply workload footprints by this
    warmup_insts: int = 20_000       # timed warm-up per core
    measure_insts: int = 60_000      # measured instructions per core
    replay_accesses: int = 12_000    # functional L2 warm-up per core

    @classmethod
    def quick(cls) -> "SimParams":
        """Reduced sizes for benchmarks / smoke tests."""
        return cls(warmup_insts=10_000, measure_insts=25_000,
                   replay_accesses=6_000)


@dataclass(frozen=True)
class RunSpec:
    """One simulation point."""

    design: str
    organization: str = "sa"
    xor_remap: bool = False
    mix_id: Optional[int] = None          # Table I mix; None -> alone run
    alone_benchmark: Optional[str] = None  # set for alone runs
    lee_writeback: bool = False
    scheduler: str = "bliss"
    use_mapi: bool = True
    seed: int = 0

    def benchmarks(self):
        if self.alone_benchmark is not None:
            return [profile(self.alone_benchmark)]
        if self.mix_id is None:
            raise ValueError("spec needs mix_id or alone_benchmark")
        return mix_profiles(self.mix_id)

    def label(self) -> str:
        name = ("XOR+" if self.xor_remap else "") + self.design
        if self.lee_writeback:
            name = "LEE+" + name
        return name


def run_one(spec: RunSpec, params: SimParams) -> SystemResult:
    """Execute one simulation point (safe to call in a worker process)."""
    cfg = scaled_config(params.capacity_scale)
    seed = spec.seed if spec.seed else (spec.mix_id or 1)
    system = System(
        cfg, spec.design, spec.benchmarks(),
        organization=spec.organization, xor_remap=spec.xor_remap,
        use_mapi=spec.use_mapi, scheduler=spec.scheduler,
        lee_writeback=spec.lee_writeback, seed=seed,
        footprint_scale=params.footprint_scale)
    result = system.run(warmup_insts=params.warmup_insts,
                        measure_insts=params.measure_insts,
                        replay_accesses=params.replay_accesses)
    result.meta["spec"] = dataclasses.asdict(spec)
    return result


# ---------------------------------------------------------------- caching

def default_cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", "results/cache"))


def _spec_key(spec: RunSpec, params: SimParams) -> str:
    payload = json.dumps(
        [dataclasses.asdict(spec), dataclasses.asdict(params)],
        sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def _load_cached(key: str, cache_dir: Path) -> Optional[SystemResult]:
    path = cache_dir / f"{key}.json"
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
        return SystemResult(**data)
    except (json.JSONDecodeError, TypeError):
        return None


def _store_cached(key: str, result: SystemResult, cache_dir: Path) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    tmp = cache_dir / f"{key}.tmp"
    tmp.write_text(json.dumps(dataclasses.asdict(result)))
    tmp.replace(cache_dir / f"{key}.json")


def _worker(args):
    spec, params = args
    return run_one(spec, params)


def run_grid(specs: Sequence[RunSpec], params: SimParams,
             jobs: int = 0, use_cache: bool = True,
             progress: bool = False) -> dict[RunSpec, SystemResult]:
    """Run many simulation points, with caching and multiprocessing."""
    cache_dir = default_cache_dir()
    out: dict[RunSpec, SystemResult] = {}
    todo: list[RunSpec] = []
    for spec in specs:
        if use_cache:
            cached = _load_cached(_spec_key(spec, params), cache_dir)
            if cached is not None:
                out[spec] = cached
                continue
        todo.append(spec)

    if todo:
        if jobs <= 0:
            jobs = min(8, os.cpu_count() or 1)
        if jobs == 1 or len(todo) == 1:
            results = map(_worker, [(s, params) for s in todo])
            for i, (spec, result) in enumerate(zip(todo, results)):
                out[spec] = result
                if use_cache:
                    _store_cached(_spec_key(spec, params), result, cache_dir)
                if progress:
                    print(f"  [{i + 1}/{len(todo)}] {spec.label()} done",
                          flush=True)
        else:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                results = pool.map(_worker, [(s, params) for s in todo])
                for i, (spec, result) in enumerate(zip(todo, results)):
                    out[spec] = result
                    if use_cache:
                        _store_cached(_spec_key(spec, params), result,
                                      cache_dir)
                    if progress:
                        print(f"  [{i + 1}/{len(todo)}] {spec.label()} done",
                              flush=True)
    return out


# ---------------------------------------------------------------- speedups

def alone_specs(organization: str, xor_remap: bool = False,
                lee_writeback: bool = False) -> list[RunSpec]:
    """Single-core runs for WS denominators (CD baseline, see DESIGN.md)."""
    return [RunSpec("CD", organization, xor_remap,
                    alone_benchmark=name, lee_writeback=lee_writeback,
                    seed=97 + i)
            for i, name in enumerate(sorted(PROFILES))]


def alone_ipc_table(results: dict[RunSpec, SystemResult]) -> dict[str, float]:
    """benchmark name -> alone IPC, from alone-run results."""
    table = {}
    for spec, res in results.items():
        if spec.alone_benchmark is not None:
            table[spec.alone_benchmark] = res.ipcs[0]
    return table


def mix_weighted_speedup(result: SystemResult,
                         alone: dict[str, float]) -> float:
    """WS of one mix result against the alone-IPC table."""
    alone_ipcs = [alone[name] for name in result.benchmarks]
    return weighted_speedup(result.ipcs, alone_ipcs)


def grid_specs(mixes: Sequence[int], organizations: Sequence[str],
               remaps: Sequence[bool] = (False,),
               designs: Sequence[str] = DESIGNS,
               lee_writeback: bool = False) -> list[RunSpec]:
    """The cross product driving Figs. 8-17 (and 19 with lee_writeback)."""
    return [RunSpec(d, org, rm, mix_id=m, lee_writeback=lee_writeback)
            for org in organizations
            for rm in remaps
            for d in designs
            for m in mixes]


def normalized_speedup_table(
        results: dict[RunSpec, SystemResult],
        alone: dict[str, float],
        mixes: Sequence[int], organization: str,
        variants: Sequence[tuple[str, bool]],
        baseline: tuple[str, bool] = ("CD", False),
        lee_writeback: bool = False,
) -> dict[tuple[str, bool], float]:
    """Geomean normalized WS per (design, remap) variant (Figs. 8/9/19)."""
    def ws_list(design: str, remap: bool) -> list[float]:
        out = []
        for m in mixes:
            spec = RunSpec(design, organization, remap, mix_id=m,
                           lee_writeback=lee_writeback)
            out.append(mix_weighted_speedup(results[spec], alone))
        return out

    base = ws_list(*baseline)
    table = {}
    for design, remap in variants:
        ws = ws_list(design, remap)
        table[(design, remap)] = geomean([a / b for a, b in zip(ws, base)])
    return table


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Minimal fixed-width ASCII table used by every experiment's report."""
    cols = [[str(h)] for h in headers]
    for row in rows:
        for c, cell in zip(cols, row):
            c.append(str(cell))
    widths = [max(len(v) for v in c) for c in cols]
    def fmt_row(vals):
        return "  ".join(str(v).ljust(w) for v, w in zip(vals, widths))
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)
