"""Shared experiment machinery: run specs, result store, parallel execution.

The evaluation figures 8-17 all read off the same **grid** of simulations
(design x organization x remapping x mix), plus single-core *alone* runs
for weighted-speedup denominators.  ``run_grid`` executes a list of
:class:`RunSpec` with a process pool and a :class:`ResultStore` — a JSON
disk cache keyed by the spec+parameter hash **and the result schema
version** (see DESIGN.md), so regenerating a second figure reuses the
first's simulations and entries written by older code are invalidated
instead of silently reused.

Execution uses ``as_completed`` futures: one crashed worker no longer
kills the whole grid (completed points are still stored and reported, and
the failures surface together in a :class:`GridExecutionError`), and the
returned mapping is always in input-spec order regardless of completion
order, so downstream iteration is deterministic.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import traceback
import zlib
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.config import scaled_config
from repro.metrics.speedup import geomean, weighted_speedup
from repro.sim.system import (
    RESULT_SCHEMA_VERSION,
    ResultSchemaError,
    System,
    SystemResult,
)
from repro.snapshot import WARM_STATE_VERSION, WarmCache
from repro.workloads.profiles import PROFILES, profile
from repro.workloads.scenarios import workload_profiles
from repro.workloads.table1 import mix_profiles

#: designs in the paper's presentation order
DESIGNS = ("CD", "ROD", "DCA")


@dataclass(frozen=True)
class SimParams:
    """Knobs shared by every run of one experiment invocation."""

    capacity_scale: int = 8          # divide L2 + DRAM-cache capacity by this
    footprint_scale: float = 1 / 20  # multiply workload footprints by this
    warmup_insts: int = 20_000       # timed warm-up per core
    measure_insts: int = 60_000      # measured instructions per core
    replay_accesses: int = 12_000    # functional L2 warm-up per core

    @classmethod
    def quick(cls) -> "SimParams":
        """Reduced sizes for benchmarks / smoke tests."""
        return cls(warmup_insts=10_000, measure_insts=25_000,
                   replay_accesses=6_000)

    @classmethod
    def from_cli(cls, quick: bool = False,
                 measure: Optional[int] = None,
                 error=None) -> "SimParams":
        """Build params from the shared CLI flags, validating ``--measure``.

        ``error`` is the argparse ``parser.error`` callable; without one a
        ``ValueError`` is raised.  Shared by the figure runner and the
        sweep CLI so the budget rules cannot drift apart.
        """
        params = cls.quick() if quick else cls()
        if measure is not None:
            # `if args.measure:` used to silently ignore --measure 0.
            if measure <= 0:
                msg = (f"--measure must be a positive instruction count, "
                       f"got {measure}")
                if error is not None:
                    error(msg)
                raise ValueError(msg)
            params = dataclasses.replace(params, measure_insts=measure)
        return params


def validated_mix_ids(n: int, error=None) -> list[int]:
    """Mixes ``1..n``, rejecting out-of-range counts.

    The old behaviour silently clamped to 30 and let ``--mixes 0``
    produce an empty grid that "passed"; both are errors now.  ``error``
    is the argparse ``parser.error`` callable; without one a
    ``ValueError`` is raised.
    """
    if not 1 <= n <= 30:
        msg = f"--mixes must be 1..30 (Table I has 30 mixes), got {n}"
        if error is not None:
            error(msg)
        raise ValueError(msg)
    return list(range(1, n + 1))


@dataclass(frozen=True)
class RunSpec:
    """One simulation point."""

    design: str
    organization: str = "sa"
    xor_remap: bool = False
    mix_id: Optional[int] = None          # Table I mix; None -> alone run
    alone_benchmark: Optional[str] = None  # set for alone runs
    lee_writeback: bool = False
    scheduler: str = "bliss"
    use_mapi: bool = True
    seed: int = 0
    #: named workload scenario (repro.workloads.scenarios) or trace:<path>
    workload: Optional[str] = None
    #: config overrides as ``(dotted_path, value)`` pairs — hashable, so
    #: sweep points over e.g. queue depth stay valid cache keys
    config: tuple = ()

    def benchmarks(self):
        if self.alone_benchmark is not None:
            return [profile(self.alone_benchmark)]
        if self.workload is not None:
            return workload_profiles(self.workload)
        if self.mix_id is None:
            raise ValueError("spec needs mix_id, workload or alone_benchmark")
        return mix_profiles(self.mix_id)

    def label(self) -> str:
        name = ("XOR+" if self.xor_remap else "") + self.design
        if self.lee_writeback:
            name = "LEE+" + name
        if self.workload is not None:
            name += f":{self.workload}"
        if self.config:
            # points differing only in overrides must stay tellable apart
            # in progress lines and GridExecutionError reports
            name += "[" + ",".join(f"{k}={v}" for k, v in self.config) + "]"
        return name


def default_seed(spec: RunSpec) -> int:
    """Trace seed of a spec that doesn't pin one explicitly.

    Distinct per benchmark/workload: alone runs used to all collapse to
    seed 1, sharing one RNG stream across every benchmark.  CRC32 of the
    target name is stable across processes and Python versions (unlike
    ``hash``), so cache keys and results stay reproducible.
    """
    if spec.seed:
        return spec.seed
    # Mirror RunSpec.benchmarks() precedence exactly: the seed derives
    # from whichever field actually supplies the benchmarks, so a spec
    # combining targets can't seed from an ignored one.
    basis = spec.alone_benchmark or spec.workload
    if basis is not None:
        return 1 + zlib.crc32(basis.encode()) % 1_000_003
    if spec.mix_id is not None:
        return spec.mix_id
    return 1 + zlib.crc32(spec.design.encode()) % 1_000_003


def resolved_config(spec: RunSpec, params: SimParams):
    """The :class:`SystemConfig` a spec actually simulates with."""
    cfg = scaled_config(params.capacity_scale)
    if spec.config:
        # Resolve the per-design queue defaults first so queue overrides
        # refine them (the controller honours explicit queues; see
        # SystemConfig.with_overrides / BaseController.__init__).
        cfg = cfg.with_queues_for(spec.design).with_overrides(spec.config)
    return cfg


def build_system(spec: RunSpec, params: SimParams) -> System:
    """Construct (but do not run) the system a spec describes."""
    return System(
        resolved_config(spec, params), spec.design, spec.benchmarks(),
        organization=spec.organization, xor_remap=spec.xor_remap,
        use_mapi=spec.use_mapi, scheduler=spec.scheduler,
        lee_writeback=spec.lee_writeback, seed=default_seed(spec),
        footprint_scale=params.footprint_scale)


def warm_group_key(spec: RunSpec, params: SimParams) -> str:
    """Warm-state cache key: the run prefix that shapes the warm-up.

    Hashes exactly the inputs the functional warm-up depends on — the
    workload (mix/scenario/alone target + trace-file content token), the
    resolved trace seed, the footprint scaling, the replay budget, the
    cache organization/lee mode and the DRAM-cache + L2 geometries —
    while **masking every controller-relevant field** (design, scheduler,
    MAP-I, XOR remap, queue/timing/main-memory configuration): specs that
    differ only in those share one warm state, which is what lets a
    multi-design sweep warm up once per (mix, substrate) group.

    KEEP IN SYNC: this input list mirrors the identity fields of
    :class:`repro.snapshot.WarmState` (captured by
    ``System.capture_warm_state``, compared by ``restore_warm_state``).
    A warm-relevant input added to one and not the others silently
    breaks the bit-identity guarantee — the CI ``snapshot-smoke`` job's
    warm-vs-cold comparison is the backstop.
    """
    cfg = resolved_config(spec, params)
    payload = json.dumps(
        [WARM_STATE_VERSION,
         spec.organization, bool(spec.lee_writeback),
         spec.mix_id, spec.workload, spec.alone_benchmark,
         _workload_content_token(spec.workload),
         default_seed(spec),
         params.footprint_scale, params.replay_accesses,
         dataclasses.asdict(cfg.dram_cache), dataclasses.asdict(cfg.l2),
         cfg.org.replacement],
        sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def run_one(spec: RunSpec, params: SimParams,
            warm_cache: Optional[WarmCache] = None) -> SystemResult:
    """Execute one simulation point (safe to call in a worker process).

    With a ``warm_cache``, the functional warm-up is served from (or
    captured into) the cache under :func:`warm_group_key` — results are
    bit-identical to a cold run either way (the warm-state invariant;
    see repro/snapshot.py), only ``result.meta["warm"]`` records which
    path ran.
    """
    system = build_system(spec, params)
    warm_meta = None
    if warm_cache is not None:
        key = warm_group_key(spec, params)
        warm = warm_cache.get(key)
        if warm is None:
            system.functional_warmup(replay_accesses=params.replay_accesses)
            warm_cache.put(key, system.capture_warm_state())
            result = system.run(warmup_insts=params.warmup_insts,
                                measure_insts=params.measure_insts,
                                functional_warmup=False)
            warm_meta = {"key": key, "restored": False}
        else:
            # replay_accesses is passed alongside the warm state so the
            # system re-asserts the state matches this params' replay
            # budget (defence in depth on top of the warm key).
            result = system.run(warmup_insts=params.warmup_insts,
                                measure_insts=params.measure_insts,
                                replay_accesses=params.replay_accesses,
                                warm_state=warm)
            warm_meta = {"key": key, "restored": True}
    else:
        result = system.run(warmup_insts=params.warmup_insts,
                            measure_insts=params.measure_insts,
                            replay_accesses=params.replay_accesses)
    spec_dict = dataclasses.asdict(spec)
    # JSON-canonical form: the config override pairs are tuples on the
    # spec (hashability) but lists on disk, so cache round-trips are
    # lossless (SystemResult equality included).
    spec_dict["config"] = [list(kv) for kv in spec.config]
    result.meta["spec"] = spec_dict
    if warm_meta is not None:
        result.meta["warm"] = warm_meta
    return result


def _run_warm_group(specs: Sequence[RunSpec], params: SimParams) -> list:
    """Run one warm group sequentially in this process, sharing warm state.

    Returns ``[(spec, result_or_None, traceback_or_None), ...]`` —
    failure isolation is per *point*: a crashed point neither kills its
    group nor poisons the warm state the rest fork from.  The warm cache
    is task-scoped: grouping puts every spec of a key into one task, so
    a longer-lived cache could never see a hit from another task — it
    would only pin the group's DRAM-cache/L2 images until pool shutdown.
    """
    return _run_batch(specs, params, WarmCache())


def _run_cold_batch(specs: Sequence[RunSpec], params: SimParams) -> list:
    """Run specs independently (no warm sharing); same result shape."""
    return _run_batch(specs, params, None)


def _run_batch(specs: Sequence[RunSpec], params: SimParams,
               warm_cache: Optional[WarmCache]) -> list:
    out = []
    for spec in specs:
        try:
            # Keep the two-argument call on the cold path: run_one is a
            # documented monkeypatch point for execution-flow tests.
            if warm_cache is None:
                result = run_one(spec, params)
            else:
                result = run_one(spec, params, warm_cache=warm_cache)
        except Exception:
            out.append((spec, None, traceback.format_exc()))
        else:
            out.append((spec, result, None))
    return out


# ---------------------------------------------------------------- result store

def default_cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", "results/cache"))


@functools.lru_cache(maxsize=256)
def _file_digest(path: str, mtime_ns: int, size: int) -> str:
    # mtime/size participate in the lru key, so an edited file re-hashes.
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()[:16]


def _workload_content_token(workload: Optional[str]) -> Optional[str]:
    """Content fingerprint of a ``trace:<path>`` workload, else None.

    A trace-file spec names the file, not its contents — without this
    token, editing the trace would silently serve stale cached results
    for the same path.  A missing file gets a sentinel (the run will
    fail with its own clear error).
    """
    if not workload or not workload.startswith("trace:"):
        return None
    path = workload[len("trace:"):]
    try:
        st = os.stat(path)
    except OSError:
        return "missing"
    return _file_digest(path, st.st_mtime_ns, st.st_size)


def atomic_write_json(path: Path, payload) -> Path:
    """Serialise ``payload`` to ``path`` via tmp-file + rename.

    The write is atomic at the filesystem level, so a crashed process
    can't leave a torn entry.  Shared by :class:`ResultStore` and the
    perf-benchmark store (repro/bench) so every on-disk JSON artefact
    goes through the same path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=False))
    tmp.replace(path)
    return path


def write_profiled(fn, path: Path):
    """Run ``fn()`` under cProfile and write pstats data to ``path``.

    The dump goes through tmp-file + rename like every other artefact,
    so an interrupted run never leaves a torn .prof behind.  Only the
    call itself is traced — argument setup and the write are outside the
    profile.  Returns ``fn``'s result.  Used by the ``--profile`` flag
    of both CLI entry points (``dca-repro`` and ``repro-perf``).
    """
    import cProfile

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    prof = cProfile.Profile()
    result = prof.runcall(fn)
    tmp = path.with_suffix(path.suffix + ".tmp")
    prof.dump_stats(tmp)
    tmp.replace(path)
    return result


class ResultStore:
    """Versioned on-disk store of :class:`SystemResult` JSON entries.

    The cache key hashes ``(schema_version, spec, params)``, so a schema
    bump changes every key and pre-refactor entries simply stop matching;
    as defence in depth, :meth:`load` also validates the entry's recorded
    ``schema_version`` and exact field set and treats any mismatch (or
    corruption) as a miss.  ``enabled=False`` turns both lookup and
    storage off — the ``--no-cache`` CLI path.
    """

    def __init__(self, cache_dir: Optional[Path] = None,
                 enabled: bool = True):
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.enabled = enabled

    def key(self, spec: RunSpec, params: SimParams) -> str:
        payload = json.dumps(
            [RESULT_SCHEMA_VERSION, dataclasses.asdict(spec),
             dataclasses.asdict(params),
             _workload_content_token(spec.workload)],
            sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    def path(self, spec: RunSpec, params: SimParams) -> Path:
        return self.cache_dir / f"{self.key(spec, params)}.json"

    def load(self, spec: RunSpec, params: SimParams) -> Optional[SystemResult]:
        if not self.enabled:
            return None
        path = self.path(spec, params)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
            return SystemResult.from_cache_dict(data)
        except (OSError, UnicodeDecodeError, json.JSONDecodeError,
                ResultSchemaError, TypeError):
            # Unreadable, truncated, corrupt or stale-schema entry:
            # a miss, never an abort.
            return None

    def store(self, spec: RunSpec, params: SimParams,
              result: SystemResult) -> None:
        if not self.enabled:
            return
        atomic_write_json(self.path(spec, params), result.to_cache_dict())


def _spec_key(spec: RunSpec, params: SimParams) -> str:
    """Cache key of one spec (compatibility helper; see ResultStore.key)."""
    return ResultStore().key(spec, params)


# ---------------------------------------------------------------- execution

class GridExecutionError(RuntimeError):
    """One or more grid points crashed; the rest completed (and cached).

    Attributes
    ----------
    failures:
        ``{spec: formatted traceback string}`` of every crashed point.
    results:
        The results of the points that did complete, in input order.
    """

    def __init__(self, failures: dict, results: dict):
        self.failures = failures
        self.results = results
        lines = [f"{len(failures)} of {len(failures) + len(results)} grid "
                 f"points failed:"]
        for spec, tb in failures.items():
            last = tb.strip().splitlines()[-1] if tb else "?"
            lines.append(f"  {spec.label()} (mix={spec.mix_id}, "
                         f"alone={spec.alone_benchmark}): {last}")
        super().__init__("\n".join(lines))


#: Process-wide default for ``run_grid(warm_cache=None)``; the CLIs set
#: it from ``--warm-cache`` so the figure modules (which call ``run_grid``
#: themselves) pick the flag up without 14 signature changes.
_default_warm_cache = False


def set_default_warm_cache(enabled: bool) -> None:
    """Set the process-wide default for warm-state reuse in grids."""
    global _default_warm_cache
    _default_warm_cache = bool(enabled)


def run_grid(specs: Sequence[RunSpec], params: SimParams,
             jobs: int = 0, use_cache: bool = True,
             progress: bool = False,
             cache_dir: Optional[Path] = None,
             store: Optional[ResultStore] = None,
             warm_cache: Optional[bool] = None) -> dict[RunSpec, SystemResult]:
    """Run many simulation points, with caching and multiprocessing.

    Results come back keyed in **input-spec order** whatever order the
    workers finish in.  A crashed point does not abort the rest: every
    other point still runs (and is stored), then a
    :class:`GridExecutionError` carrying all failures is raised.

    With ``warm_cache`` (default: the process-wide flag set by
    ``--warm-cache``), points sharing a warm-up prefix — same workload,
    seed and substrate, any controller design — are grouped under
    :func:`warm_group_key` and executed in one worker each: the first
    point captures the functional warm state, the rest fork from it.
    Results are bit-identical to cold runs; only wall-clock changes
    (see BENCH warm_reuse and tests/test_warm_cache.py).  Note that with
    ``jobs > 1`` a warm group is one pool task, so store/checkpoint
    granularity coarsens from per point to per group and parallelism is
    bounded by the number of *groups* — a single-mix multi-design sweep
    is one group and runs sequentially (the warm win must beat the lost
    parallelism; grids spanning several mixes keep both).  ``jobs=1``
    keeps per-point streaming.
    """
    if warm_cache is None:
        warm_cache = _default_warm_cache
    if store is None:
        store = ResultStore(cache_dir, enabled=use_cache)
    done: dict[RunSpec, SystemResult] = {}
    failures: dict[RunSpec, str] = {}
    todo: list[RunSpec] = []
    seen: set[RunSpec] = set()
    for spec in specs:
        if spec in seen:
            continue
        seen.add(spec)
        cached = store.load(spec, params)
        if cached is not None:
            done[spec] = cached
        else:
            todo.append(spec)

    completed = 0

    def record(spec: RunSpec, result: SystemResult) -> None:
        nonlocal completed
        completed += 1
        done[spec] = result
        # Warm/cold runs share cache entries (results are bit-identical),
        # so the *stored* form must not carry this run's warm provenance:
        # a later cache hit would replay stale restored/cold flags.  The
        # in-memory result keeps them for this run's reporting.
        if "warm" in result.meta:
            stored = dataclasses.replace(
                result, meta={k: v for k, v in result.meta.items()
                              if k != "warm"})
        else:
            stored = result
        store.store(spec, params, stored)
        if progress:
            print(f"  [{completed}/{len(todo)}] {spec.label()} done",
                  flush=True)

    # The unit of work: single specs normally, whole warm groups (in
    # warm-key order of first appearance) under warm_cache.
    if warm_cache:
        groups: dict[str, list[RunSpec]] = {}
        for i, spec in enumerate(todo):
            try:
                key = warm_group_key(spec, params)
            except Exception:
                # Malformed spec (e.g. unknown design with overrides):
                # keep the failure-isolation promise — give it its own
                # group so the error surfaces as that point's failure in
                # the worker, not as a grid-wide crash here.
                key = f"_unkeyable_{i}"
            groups.setdefault(key, []).append(spec)
        batches = list(groups.values())
    else:
        batches = [[spec] for spec in todo]

    def absorb(batch_results: list) -> None:
        # Only the simulation itself is failure-isolated; a store/report
        # error is an infrastructure problem and propagates as itself
        # (guarding record() too would book one spec as both a success
        # and a failure).
        for spec, result, tb in batch_results:
            if tb is not None:
                failures[spec] = tb
            else:
                record(spec, result)

    if todo:
        if jobs <= 0:
            jobs = min(8, os.cpu_count() or 1)
        if jobs == 1 or len(batches) == 1:
            # Sequential: stream point by point (checkpoint granularity
            # stays per *point* even under warm grouping — the batches
            # only order capture before forks).  The warm cache is
            # call-scoped, so captured states are released with the grid
            # instead of pinned in the calling process.
            grid_warm = WarmCache() if warm_cache else None
            for batch in batches:
                for spec in batch:
                    absorb(_run_batch([spec], params, grid_warm))
        else:
            # Pooled: one task per batch.  Under warm grouping a batch is
            # a whole warm group, so checkpoint granularity is per group
            # here (a killed run re-simulates at most one group's tail).
            worker = _run_warm_group if warm_cache else _run_cold_batch
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {pool.submit(worker, batch, params): batch
                           for batch in batches}
                for fut in as_completed(futures):
                    batch = futures[fut]
                    try:
                        batch_results = fut.result()
                    except Exception:
                        # Worker-level death (broken pool, unpicklable
                        # result): book every spec of the batch as a
                        # point failure so the rest of the grid still
                        # completes and reports.
                        tb = traceback.format_exc()
                        batch_results = [(spec, None, tb) for spec in batch]
                    absorb(batch_results)

    # Deterministic ordering: follow the input sequence, not completion.
    out = {spec: done[spec] for spec in specs if spec in done}
    if failures:
        raise GridExecutionError(failures, out)
    return out


# ---------------------------------------------------------------- speedups

def alone_specs(organization: str, xor_remap: bool = False,
                lee_writeback: bool = False) -> list[RunSpec]:
    """Single-core runs for WS denominators (CD baseline, see DESIGN.md)."""
    return [RunSpec("CD", organization, xor_remap,
                    alone_benchmark=name, lee_writeback=lee_writeback,
                    seed=97 + i)
            for i, name in enumerate(sorted(PROFILES))]


def alone_ipc_table(results: dict[RunSpec, SystemResult]) -> dict[str, float]:
    """benchmark name -> alone IPC, from alone-run results."""
    table = {}
    for spec, res in results.items():
        if spec.alone_benchmark is not None:
            table[spec.alone_benchmark] = res.ipcs[0]
    return table


def mix_weighted_speedup(result: SystemResult,
                         alone: dict[str, float]) -> float:
    """WS of one mix result against the alone-IPC table."""
    alone_ipcs = [alone[name] for name in result.benchmarks]
    return weighted_speedup(result.ipcs, alone_ipcs)


def grid_specs(mixes: Sequence[int], organizations: Sequence[str],
               remaps: Sequence[bool] = (False,),
               designs: Sequence[str] = DESIGNS,
               lee_writeback: bool = False) -> list[RunSpec]:
    """The cross product driving Figs. 8-17 (and 19 with lee_writeback)."""
    return [RunSpec(d, org, rm, mix_id=m, lee_writeback=lee_writeback)
            for org in organizations
            for rm in remaps
            for d in designs
            for m in mixes]


def normalized_speedup_table(
        results: dict[RunSpec, SystemResult],
        alone: dict[str, float],
        mixes: Sequence[int], organization: str,
        variants: Sequence[tuple[str, bool]],
        baseline: tuple[str, bool] = ("CD", False),
        lee_writeback: bool = False,
) -> dict[tuple[str, bool], float]:
    """Geomean normalized WS per (design, remap) variant (Figs. 8/9/19)."""
    def ws_list(design: str, remap: bool) -> list[float]:
        out = []
        for m in mixes:
            spec = RunSpec(design, organization, remap, mix_id=m,
                           lee_writeback=lee_writeback)
            out.append(mix_weighted_speedup(results[spec], alone))
        return out

    base = ws_list(*baseline)
    table = {}
    for design, remap in variants:
        ws = ws_list(design, remap)
        table[(design, remap)] = geomean([a / b for a, b in zip(ws, base)])
    return table


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Minimal fixed-width ASCII table used by every experiment's report."""
    cols = [[str(h)] for h in headers]
    for row in rows:
        for c, cell in zip(cols, row):
            c.append(str(cell))
    widths = [max(len(v) for v in c) for c in cols]
    def fmt_row(vals):
        return "  ".join(str(v).ljust(w) for v, w in zip(vals, widths))
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)
