"""Fig. 18 — DRAM tag accesses vs. SRAM tag-cache size.

The paper replays DRAM-cache tag traffic through an ATCache-style SRAM tag
cache (Huang & Nagarajan, PACT'14) and counts the *DRAM* tag accesses that
remain.  Counter-intuitively the tag cache does not reduce DRAM tag
traffic: tag blocks have poor temporal locality (the tag cache is smaller
than the tag footprint of the L2's own contents), so nearly every request
misses and pays (1 + prefetch-degree) DRAM tag reads plus dirty tag-block
writebacks.  For a 256 MB cache, even 192 KB of tag cache roughly
*doubles* tag traffic versus no tag cache.

This experiment is functional (no timing): it streams a Table I mix's
post-L2 request sequence against the set-associative tag layout for a
range of tag-cache sizes and reports DRAM tag accesses normalized to the
no-tag-cache baseline.
"""

from __future__ import annotations

from typing import Sequence

from repro.cache.dramcache import DRAMCacheArray
from repro.cache.tagcache import TagCache
from repro.config import scaled_config
from repro.experiments.common import SimParams, format_table
from repro.mem.sram import SRAMCache
from repro.workloads.generator import make_trace
from repro.workloads.table1 import mix_profiles

ID = "fig18"
TITLE = "Fig. 18: DRAM tag accesses vs tag-cache size (normalized to none)"

#: tag-cache sizes swept by the paper's figure
SIZES_KB = (0, 32, 64, 96, 128, 192)


def tag_traffic(mix_id: int, size_kb: int, params: SimParams,
                accesses_per_core: int = 40_000) -> int:
    """DRAM tag accesses after filtering through a ``size_kb`` tag cache."""
    cfg = scaled_config(params.capacity_scale)
    array = DRAMCacheArray(cfg.dram_cache, "sa")
    l2 = SRAMCache(cfg.l2)
    tc = TagCache(array, size_kb * 1024)
    profiles = mix_profiles(mix_id)
    traces = [make_trace(p, seed=mix_id * 100 + i, core_offset=i << 44,
                         footprint_scale=params.footprint_scale)
              for i, p in enumerate(profiles)]
    block_mask = ~(cfg.l2.block_bytes - 1)
    for trace in traces:
        for _ in range(accesses_per_core):
            _gap, addr, is_write, _pc = next(trace)
            addr &= block_mask
            if l2.touch(addr, is_write):
                continue
            victim = l2.fill(addr, dirty=is_write)
            # Demand read: tag lookup, then functional cache update.
            tc.access(addr, is_write=False)
            if not array.lookup_read(addr).hit:
                array.fill(addr, dirty=False)
            if victim is not None:
                # Writeback: tag lookup that will update the tag block.
                tc.access(victim, is_write=True)
                if not array.lookup_write(victim).hit:
                    array.fill(victim, dirty=True)
    return tc.stats.dram_tag_accesses


def run(params: SimParams, mixes: Sequence[int], jobs: int = 0,
        progress: bool = False, use_cache: bool = True):
    use = list(mixes)[:3] or [1]
    counts = {kb: sum(tag_traffic(m, kb, params) for m in use)
              for kb in SIZES_KB}
    base = counts[0]
    norm = {kb: counts[kb] / base for kb in SIZES_KB}

    rows = [[f"{kb} KB" if kb else "no tag cache",
             counts[kb], f"{norm[kb]:.2f}x"] for kb in SIZES_KB]
    report = format_table(
        ["tag cache", "DRAM tag accesses", "normalized"],
        rows, title=f"{TITLE}  [mixes {use}]")
    data = {"mixes": use, "normalized": {str(k): v for k, v in norm.items()},
            "counts": {str(k): v for k, v in counts.items()}}

    checks = [
        ("tag caches increase DRAM tag traffic (all sizes > 1.0x)",
         all(norm[kb] > 1.0 for kb in SIZES_KB if kb)),
        ("~2x traffic at the largest size (>1.5x)",
         norm[SIZES_KB[-1]] > 1.5),
        ("traffic shrinks as the tag cache grows (hit rate improves)",
         counts[192] <= counts[32]),
    ]
    return report, data, checks
