"""Fig. 16 — row-buffer hit rate (reads), set-associative."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import SimParams
from repro.experiments.rowhit import run_org

ID = "fig16"
TITLE = "Fig. 16: read row-buffer hit rate, set-associative"


def run(params: SimParams, mixes: Sequence[int], jobs: int = 0,
        progress: bool = False, use_cache: bool = True):
    return run_org("sa", params, mixes, jobs=jobs, progress=progress,
                   use_cache=use_cache, title=TITLE)
