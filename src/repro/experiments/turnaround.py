"""Shared implementation of Figs. 14 and 15 — accesses per turnaround.

The paper reports read/write accesses per bus turnaround (higher is
better) for CD, ROD and DCA *without* remapping (it notes remapping does
not change turnaround counts).  Expected shape: CD and DCA process several
times more accesses per turnaround than ROD (paper: ROD ~ a third of CD;
DCA ~ CD).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    DESIGNS,
    RunSpec,
    SimParams,
    format_table,
    grid_specs,
    run_grid,
)
from repro.metrics.speedup import geomean


def run_org(organization: str, params: SimParams, mixes: Sequence[int],
            jobs: int = 0, progress: bool = False, use_cache: bool = True,
            title: str = ""):
    specs = grid_specs(mixes, (organization,))
    results = run_grid(specs, params, jobs=jobs, progress=progress,
                       use_cache=use_cache)

    apt: dict[str, float] = {}
    for design in DESIGNS:
        vals = [results[RunSpec(design, organization, False, mix_id=m)]
                .accesses_per_turnaround for m in mixes]
        apt[design] = geomean(vals)

    rows = [[d, f"{apt[d]:.1f}"] for d in DESIGNS]
    report = format_table(
        ["design", "accesses per turnaround (higher is better)"],
        rows, title=title)
    data = {"mixes": list(mixes), "accesses_per_turnaround": apt}

    checks = [
        ("CD >> ROD (ROD pays frequent turnarounds)",
         apt["CD"] > 1.4 * apt["ROD"]),
        ("DCA comparable to or better than CD", apt["DCA"] >= 0.9 * apt["CD"]),
        ("DCA >> ROD", apt["DCA"] > 1.4 * apt["ROD"]),
    ]
    return report, data, checks
