"""Shared implementation of Figs. 12 and 13 — L2 miss-latency improvement.

The paper reports the improvement in mean L2 miss latency (the time from
an L2 miss reaching the DRAM-cache controller to data return) for every
variant, normalized to plain CD.  Paper (SA): DCA +20 %, ROD +11 % without
remapping; with remapping DCA +31 %, CD +21.2 %, ROD +17.9 %.  Paper (DM):
DCA +40 %, ROD +20 %; remapped DCA +52 %, CD +40 %, ROD +31 %.

Improvement is reported as ``lat(CD) / lat(variant) - 1`` geomeaned over
mixes (latency lower = improvement positive).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    RunSpec,
    SimParams,
    format_table,
    grid_specs,
    run_grid,
)
from repro.experiments.perworkload import VARIANTS, _label
from repro.metrics.speedup import geomean


def run_org(organization: str, params: SimParams, mixes: Sequence[int],
            jobs: int = 0, progress: bool = False, use_cache: bool = True,
            title: str = ""):
    specs = grid_specs(mixes, (organization,), remaps=(False, True))
    results = run_grid(specs, params, jobs=jobs, progress=progress,
                       use_cache=use_cache)

    improvements: dict[str, float] = {}
    for design, remap in VARIANTS:
        ratios = []
        for m in mixes:
            base = results[RunSpec("CD", organization, False, mix_id=m)]
            var = results[RunSpec(design, organization, remap, mix_id=m)]
            ratios.append(base.mean_read_latency_ps
                          / max(1.0, var.mean_read_latency_ps))
        improvements[_label(design, remap)] = geomean(ratios) - 1.0

    rows = [[lab, f"{improvements[lab] * 100:+.1f}%"]
            for lab in [_label(d, r) for d, r in VARIANTS]]
    report = format_table(["variant", "L2 miss-latency improvement vs CD"],
                          rows, title=title)
    data = {"mixes": list(mixes), "improvement": improvements}

    imp = improvements
    # NOTE on the DCA-vs-ROD comparison: this experiment reports *mean*
    # controller latency.  ROD's cost is concentrated in flush-episode
    # tails, which weighted speedup (fig08) captures but a mean does not —
    # so DCA is only required to be within noise of ROD here, and strictly
    # better on the end-to-end metric (see EXPERIMENTS.md).
    checks = [
        ("DCA improves over CD", imp["DCA"] > 0),
        ("DCA within 3% of ROD or better (mean hides ROD's flush tails)",
         imp["DCA"] > imp["ROD"] - 0.03),
        ("XOR+DCA within 3% of best remapped variant",
         imp["XOR+DCA"] >= max(imp["XOR+CD"], imp["XOR+ROD"]) - 0.03),
        ("remapping helps CD", imp["XOR+CD"] > 0),
    ]
    return report, data, checks
