"""Fig. 9 — average speedup with the XOR permutation remapping added.

All designs gain the Zhang et al. remapping; speedups stay normalized to
plain CD (no remapping).  Paper: XOR+CD reaches +16.2 % (SA) / +22.1 %
(DM); XOR+ROD is the *worst of the remapped designs* (it already avoided
RRC, so remapping only leaves its turnaround penalty); XOR+DCA leads with
+23.7 % (SA) / +29 % (DM), i.e. still ~7 % over XOR+CD.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    DESIGNS,
    SimParams,
    alone_ipc_table,
    alone_specs,
    format_table,
    grid_specs,
    normalized_speedup_table,
    run_grid,
)

ID = "fig09"
TITLE = "Fig. 9: average speedup with remapping (normalized to CD w/o remap)"

PAPER = {("sa", "CD"): 1.162, ("sa", "ROD"): 1.15, ("sa", "DCA"): 1.237,
         ("dm", "CD"): 1.221, ("dm", "ROD"): 1.17, ("dm", "DCA"): 1.29}


def run(params: SimParams, mixes: Sequence[int], jobs: int = 0,
        progress: bool = False, use_cache: bool = True):
    specs = grid_specs(mixes, ("sa", "dm"), remaps=(False, True))
    specs += alone_specs("sa") + alone_specs("dm")
    results = run_grid(specs, params, jobs=jobs, progress=progress,
                       use_cache=use_cache)

    data: dict = {"mixes": list(mixes), "speedups": {}}
    rows = []
    for org in ("sa", "dm"):
        alone = alone_ipc_table(
            {s: r for s, r in results.items()
             if s.alone_benchmark and s.organization == org})
        variants = [(d, True) for d in DESIGNS]
        table = normalized_speedup_table(results, alone, mixes, org,
                                         variants=variants)
        for design in DESIGNS:
            val = table[(design, True)]
            data["speedups"][f"{org}:XOR+{design}"] = val
            rows.append([org, f"XOR+{design}", f"{val:.3f}",
                         f"~{PAPER[(org, design)]:.2f}"])

    report = format_table(
        ["org", "design", "speedup (this repro)", "speedup (paper)"],
        rows, title=TITLE)

    s = data["speedups"]
    checks = [
        ("SA: XOR+DCA best", s["sa:XOR+DCA"] > s["sa:XOR+CD"]
         and s["sa:XOR+DCA"] > s["sa:XOR+ROD"]),
        ("SA: XOR+CD >= XOR+ROD (remap fixes CD's RRC, ROD keeps turnarounds)",
         s["sa:XOR+CD"] >= s["sa:XOR+ROD"] * 0.99),
        ("DM: XOR+DCA best", s["dm:XOR+DCA"] > s["dm:XOR+CD"]
         and s["dm:XOR+DCA"] > s["dm:XOR+ROD"]),
        ("SA: XOR+DCA still beats XOR+CD by >2%",
         s["sa:XOR+DCA"] / s["sa:XOR+CD"] > 1.02),
        ("DM: XOR+DCA still beats XOR+CD by >2%",
         s["dm:XOR+DCA"] / s["dm:XOR+CD"] > 1.02),
    ]
    return report, data, checks
