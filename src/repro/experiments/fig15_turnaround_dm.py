"""Fig. 15 — accesses per turnaround, direct-mapped."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import SimParams
from repro.experiments.turnaround import run_org

ID = "fig15"
TITLE = "Fig. 15: accesses per turnaround, direct-mapped"


def run(params: SimParams, mixes: Sequence[int], jobs: int = 0,
        progress: bool = False):
    return run_org("dm", params, mixes, jobs=jobs, progress=progress,
                   title=TITLE)
