"""Table II — system and die-stacked DRAM parameters (config check)."""

from __future__ import annotations

from typing import Sequence

from repro.config import QueueConfig, ns, paper_config
from repro.experiments.common import SimParams, format_table

ID = "table2"
TITLE = "Table II: system and die-stacked DRAM parameters"


def run(params: SimParams, mixes: Sequence[int], jobs: int = 0,
        progress: bool = False, use_cache: bool = True):
    cfg = paper_config()
    t = cfg.timings
    rod_q = QueueConfig.for_design("ROD")
    rows = [
        ["processor", "4 GHz, 8-wide, 192 ROB",
         f"{cfg.cpu.freq_ghz:g} GHz, {cfg.cpu.width}-wide, {cfg.cpu.rob_entries} ROB"],
        ["L1 I/D", "32 KB / 2-way, 2 cycles",
         f"{cfg.l1.size_bytes // 1024} KB / {cfg.l1.assoc}-way, {cfg.l1.latency_cycles} cycles"],
        ["L2", "8 MB, 20 cycles",
         f"{cfg.l2.size_bytes // 2**20} MB, {cfg.l2.latency_cycles} cycles"],
        ["L3 (DRAM cache)", "256 MB (240 MB data), 1/15 way",
         f"{cfg.dram_cache.size_bytes // 2**20} MB "
         f"({cfg.dram_cache.data_capacity // 2**20} MB data), "
         f"1/{cfg.dram_cache.sa_ways} way"],
        ["memory latency", "50 ns", f"{cfg.mainmem.latency_ps // 1000} ns"],
        ["tRCD-tCAS-tRP-tRAS", "8-8-8-30 ns",
         f"{t.tRCD}-{t.tCAS}-{t.tRP}-{t.tRAS} ps"],
        ["tWTR-tRTP-tRTW", "5-7.5-1.67 ns",
         f"{t.tWTR}-{t.tRTP}-{t.tRTW} ps"],
        ["tWR-tBURST", "15-3.33 ns", f"{t.tWR}-{t.tBURST} ps"],
        ["organization", "16 banks/rank, 1 rank/ch, 4 ch, 4 KB row",
         f"{cfg.org.banks_per_rank} banks/rank, {cfg.org.ranks_per_channel} rank/ch, "
         f"{cfg.org.channels} ch, {cfg.org.row_bytes // 1024} KB row"],
        ["read queue", "64 (32 ROD)/channel, DCA 75%/85%",
         f"{cfg.queues.read_entries} ({rod_q.read_entries} ROD), "
         f"{cfg.queues.lr_drain_low:.0%}/{cfg.queues.lr_drain_high:.0%}"],
        ["write queue", "64 (96 ROD)/channel, 50%/85%",
         f"{cfg.queues.write_entries} ({rod_q.write_entries} ROD), "
         f"{cfg.queues.write_low_watermark:.0%}/{cfg.queues.write_high_watermark:.0%}"],
    ]
    report = format_table(["parameter", "paper", "this config"], rows,
                          title=TITLE)
    data = {"paper_config": True}
    checks = [
        ("stacked timings match Table II",
         (t.tRCD, t.tCAS, t.tRP, t.tRAS) == (ns(8), ns(8), ns(8), ns(30))
         and (t.tWTR, t.tRTP, t.tRTW) == (ns(5), ns(7.5), ns(1.67))
         and (t.tWR, t.tBURST) == (ns(15), ns(3.33))),
        ("geometry matches Table II",
         cfg.org.channels == 4 and cfg.org.banks_per_rank == 16
         and cfg.org.row_bytes == 4096
         and cfg.dram_cache.size_bytes == 256 * 2**20
         and cfg.dram_cache.data_capacity == 240 * 2**20),
        ("queue sizes match Table II",
         cfg.queues.read_entries == 64 and cfg.queues.write_entries == 64
         and rod_q.read_entries == 32 and rod_q.write_entries == 96),
    ]
    return report, data, checks
