"""Fig. 17 — row-buffer hit rate (reads), direct-mapped."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import SimParams
from repro.experiments.rowhit import run_org

ID = "fig17"
TITLE = "Fig. 17: read row-buffer hit rate, direct-mapped"


def run(params: SimParams, mixes: Sequence[int], jobs: int = 0,
        progress: bool = False, use_cache: bool = True):
    return run_org("dm", params, mixes, jobs=jobs, progress=progress,
                   use_cache=use_cache, title=TITLE)
