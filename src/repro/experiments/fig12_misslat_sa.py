"""Fig. 12 — L2 miss-latency improvement, set-associative."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import SimParams
from repro.experiments.misslat import run_org

ID = "fig12"
TITLE = "Fig. 12: L2 miss latency improvement, set-associative (vs CD)"


def run(params: SimParams, mixes: Sequence[int], jobs: int = 0,
        progress: bool = False, use_cache: bool = True):
    return run_org("sa", params, mixes, jobs=jobs, progress=progress,
                   use_cache=use_cache, title=TITLE)
