"""Shared implementation of Figs. 10 and 11 — per-workload speedups.

Both figures plot, for every Table I mix, the weighted speedup of all six
variants (CD/ROD/DCA, each with and without remapping) normalized to plain
CD on that mix; Fig. 10 is the set-associative organization, Fig. 11 the
direct-mapped one.  Paper expectation: the ordering trends of Figs. 8/9
hold across (nearly) all mixes.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    RunSpec,
    SimParams,
    alone_ipc_table,
    alone_specs,
    format_table,
    grid_specs,
    mix_weighted_speedup,
    run_grid,
)
from repro.workloads.table1 import mix_name

VARIANTS = [("CD", False), ("ROD", False), ("DCA", False),
            ("CD", True), ("ROD", True), ("DCA", True)]


def _label(design: str, remap: bool) -> str:
    return ("XOR+" if remap else "") + design


def run_org(organization: str, params: SimParams, mixes: Sequence[int],
            jobs: int = 0, progress: bool = False, use_cache: bool = True,
            title: str = ""):
    specs = grid_specs(mixes, (organization,), remaps=(False, True))
    specs += alone_specs(organization)
    results = run_grid(specs, params, jobs=jobs, progress=progress,
                       use_cache=use_cache)
    alone = alone_ipc_table(
        {s: r for s, r in results.items() if s.alone_benchmark})

    per_mix: dict[int, dict[str, float]] = {}
    for m in mixes:
        base = mix_weighted_speedup(
            results[RunSpec("CD", organization, False, mix_id=m)], alone)
        per_mix[m] = {}
        for design, remap in VARIANTS:
            spec = RunSpec(design, organization, remap, mix_id=m)
            per_mix[m][_label(design, remap)] = (
                mix_weighted_speedup(results[spec], alone) / base)

    labels = [_label(d, r) for d, r in VARIANTS]
    rows = []
    for m in mixes:
        rows.append([f"mix{m:02d}", mix_name(m)[:34]]
                    + [f"{per_mix[m][lab]:.3f}" for lab in labels])
    report = format_table(["mix", "benchmarks"] + labels, rows, title=title)

    data = {"mixes": list(mixes),
            "per_mix": {str(m): per_mix[m] for m in mixes}}

    n = len(mixes)
    dca_beats_cd = sum(per_mix[m]["DCA"] > 1.0 for m in mixes)
    dca_best = sum(
        max(per_mix[m]["DCA"], per_mix[m]["XOR+DCA"])
        >= max(per_mix[m][lab] for lab in labels) - 1e-9
        for m in mixes)
    checks = [
        (f"DCA beats CD on >=80% of mixes ({dca_beats_cd}/{n})",
         dca_beats_cd >= 0.8 * n),
        (f"a DCA variant is the best on >=60% of mixes ({dca_best}/{n})",
         dca_best >= 0.6 * n),
    ]
    return report, data, checks
